//! Chaos soak workload: mixed-model migrations, lock contention and stub
//! invocations under seeded crashes, restarts and partitions — with
//! faults injected both *between* operations and *mid-protocol*.
//!
//! The tentpole invariants of the fault-tolerance subsystem:
//!
//! * **Typed partial failure** — under arbitrary crash/restart/partition
//!   schedules, every driver operation either completes or resolves to a
//!   typed [`MageError`]; it never hangs.
//! * **No silent rebinds** — a stub pinned to an object incarnation
//!   either reaches *that* object or resolves to
//!   [`MageError::StaleIdentity`]; a re-created same-name object never
//!   silently serves a stale stub's calls. Rebinding is an explicit act
//!   ([`Session::rebind`]), and this workload performs (and counts) it.
//!
//! The run drives thousands of REV/GREV/COD/CLE/mobile-agent operations
//! (some guarded with §4.4 locks), explicit lock/unlock cycles, and
//! stub-pinned invocations against two shared objects, while a seeded
//! adversary crashes nodes, restarts them empty, cuts and heals links —
//! and, for a slice of the operations, injects the fault *while the
//! protocol is mid-flight* (crash during `receive`/`receiveClass`, cuts
//! during find walks). It classifies every outcome and folds the whole
//! run into a digest, so two runs with the same seed can be checked for
//! identical behaviour event-for-event.
//!
//! With [`ChaosConfig::check_invariants`] the run records a full trace
//! and checks protocol invariants *over the event trace* (not just op
//! resolution): at-most-once execution per call id, no response accepted
//! by a dead incarnation of its caller, and no lock grant to a waiter
//! from an incarnation the granting node had already purged.
//!
//! Conventions:
//!
//! * `h0` is the protected home namespace: it is never crashed, so the
//!   class library stays deployed and lost objects can be re-created.
//! * When an operation reports [`MageError::NotFound`] the shared object
//!   is presumed dead with its host; the driver re-creates it at `h0`
//!   (counted in [`ChaosReport::recreated`]).
//! * [`MageError::Unreachable`] is *not* grounds for re-creation — the
//!   object may be alive on the far side of a partition.

use std::collections::{BTreeMap, BTreeSet};

use mage_core::attribute::{Cle, Cod, Grev, MobileAgent, MobilityAttribute, Rev};
use mage_core::workload_support::{methods, test_object_class};
use mage_core::{MageError, Runtime, Session, Stub, Visibility};
use mage_sim::TraceEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for both the runtime world and the fault schedule.
    pub seed: u64,
    /// Number of namespaces (`h0` … `h{hosts-1}`); at least 3.
    pub hosts: usize,
    /// Number of driver operations to run.
    pub ops: usize,
    /// Percent chance (0–100) that a fault action precedes an operation.
    pub fault_percent: u8,
    /// Percent of operations that are explicit lock/unlock cycles
    /// (lock-heavy schedules racing the crash adversary).
    pub lock_percent: u8,
    /// Percent of operations that are stub-pinned invocations (the
    /// stale-identity surface).
    pub stub_percent: u8,
    /// Percent chance that an attribute operation runs asynchronously
    /// with a fault injected mid-protocol (crash during
    /// `receive`/`receiveClass`, cuts during find walks).
    pub midflight_percent: u8,
    /// Record a full trace and check protocol invariants over it.
    pub check_invariants: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 2001,
            hosts: 5,
            ops: 1_000,
            fault_percent: 15,
            lock_percent: 15,
            stub_percent: 15,
            midflight_percent: 10,
            check_invariants: false,
        }
    }
}

/// Outcome of a chaos run. Two runs with the same [`ChaosConfig`] must
/// produce equal reports (including [`ChaosReport::digest`], which folds
/// every per-operation outcome and fault event in order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// Operations driven.
    pub ops: usize,
    /// Operations that completed successfully.
    pub ok: usize,
    /// Typed `Unreachable` outcomes (crashed or partitioned peers).
    pub unreachable: usize,
    /// Typed `NotFound` outcomes (object died with its host).
    pub not_found: usize,
    /// Typed `StaleIdentity` outcomes: a stale stub reached a re-created
    /// same-name object and was *refused* — the detection the incarnation
    /// machinery exists for. Each is followed by an explicit rebind
    /// attempt (see [`ChaosReport::rebinds`]).
    pub stale_identity: usize,
    /// Typed coercion rejections (expected for some attribute mixes).
    pub coercion: usize,
    /// Typed simulation outcomes (operation stalled because its own
    /// namespace lost the command to a crash).
    pub stalled: usize,
    /// Every other typed error.
    pub other_errors: usize,
    /// Explicit stub rebinds performed after `StaleIdentity`.
    pub rebinds: usize,
    /// Lock/unlock cycles fully completed.
    pub lock_cycles: usize,
    /// Faults injected mid-protocol (as opposed to between operations).
    pub midflight_faults: usize,
    /// Times a shared object was re-created at `h0` after being lost.
    pub recreated: usize,
    /// Fault actions applied.
    pub crashes: usize,
    /// Nodes brought back.
    pub restarts: usize,
    /// Links cut.
    pub partitions: usize,
    /// Links healed.
    pub heals: usize,
    /// Messages sent / dropped by the fabric (trace equivalence check).
    pub sent: u64,
    /// Messages dropped (loss, partitions, dead nodes).
    pub dropped: u64,
    /// Virtual time consumed, in microseconds.
    pub elapsed_us: u64,
    /// FNV-1a fold of every fault event and operation outcome in order.
    pub digest: u64,
}

impl ChaosReport {
    /// Operations that resolved (success or typed error).
    ///
    /// Hang-protection is *enforced*, not merely counted: every blocking
    /// wait runs under the world's bounded event budget, so a protocol
    /// that stops making progress (queue drained, op unresolved) or
    /// livelocks (budget exhausted) surfaces as [`MageError::Sim`] and
    /// lands in [`ChaosReport::stalled`]. A healthy run therefore shows
    /// `resolved() == ops` **and** `stalled == 0` — the second condition
    /// is the one a hang regression would break.
    pub fn resolved(&self) -> usize {
        self.ok
            + self.unreachable
            + self.not_found
            + self.stale_identity
            + self.coercion
            + self.stalled
            + self.other_errors
    }
}

/// Protocol invariants checked over the recorded event trace (not just
/// operation resolution). All violation counters must be zero; the
/// informational counters prove the checks had material to chew on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvariantReport {
    /// Call executions observed (one note per non-duplicate execution).
    pub execs: usize,
    /// VIOLATION: the same `(caller, caller-epoch, call id)` executed
    /// more than once — the at-most-once dedup machinery failed.
    pub duplicate_execs: usize,
    /// Responses accepted by callers (matched against a pending call).
    pub rsp_accepts: usize,
    /// VIOLATION: a response was accepted by a node whose incarnation
    /// differs from the one that issued the call (the wire-carried
    /// request-epoch echo failed to protect the reused call-id space).
    pub stale_rsp_accepts: usize,
    /// Responses correctly discarded because they answered a previous
    /// incarnation's call (the machinery working as intended).
    pub stale_rsp_dropped: usize,
    /// Lock grants delivered to waiters.
    pub grants: usize,
    /// VIOLATION: a grant went to a waiter from an incarnation the
    /// granting node had already purged.
    pub stale_grants: usize,
}

impl InvariantReport {
    /// Total invariant violations (must be zero).
    pub fn violations(&self) -> usize {
        self.duplicate_execs + self.stale_rsp_accepts + self.stale_grants
    }
}

fn fold(digest: &mut u64, value: u64) {
    // FNV-1a over 8-byte words: cheap, deterministic, order-sensitive.
    for byte in value.to_le_bytes() {
        *digest ^= u64::from(byte);
        *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Classification codes folded into the digest (stable across runs).
fn outcome_code(result: &Result<Option<i64>, MageError>) -> (u64, u64) {
    match result {
        Ok(v) => (0, v.unwrap_or(-1) as u64),
        Err(MageError::Unreachable { peer }) => (1, u64::from(*peer)),
        Err(MageError::NotFound(_)) => (2, 0),
        Err(MageError::Coercion { .. } | MageError::NotApplicable { .. }) => (3, 0),
        Err(MageError::Sim(_)) => (4, 0),
        Err(MageError::ClassUnavailable(_)) => (5, 0),
        Err(MageError::Denied(_)) => (6, 0),
        Err(MageError::BadPlan(_)) => (7, 0),
        Err(MageError::Rmi(_)) => (8, 0),
        Err(MageError::Codec(_)) => (9, 0),
        Err(MageError::StaleIdentity { fresh, .. }) => (11, *fresh),
        Err(_) => (10, 0),
    }
}

fn pair(a: usize, b: usize) -> (usize, usize) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Runs the chaos workload (no invariant checking; see
/// [`run_checked`] for the trace-checked form).
///
/// # Errors
///
/// Returns only infrastructure failures (bad configuration); operation
/// failures under fault injection are *outcomes* counted in the report.
///
/// # Panics
///
/// Panics if `cfg.hosts < 3`.
pub fn run(cfg: &ChaosConfig) -> Result<ChaosReport, MageError> {
    run_checked(cfg).map(|(report, _)| report)
}

/// Runs the chaos workload; when [`ChaosConfig::check_invariants`] is
/// set, also returns the trace-derived [`InvariantReport`].
///
/// # Errors
///
/// See [`run`].
///
/// # Panics
///
/// Panics if `cfg.hosts < 3`.
#[allow(clippy::too_many_lines)]
pub fn run_checked(cfg: &ChaosConfig) -> Result<(ChaosReport, Option<InvariantReport>), MageError> {
    assert!(cfg.hosts >= 3, "chaos needs at least three hosts");
    const OBJECTS: [&str; 2] = ["shared", "shared2"];
    let names: Vec<String> = (0..cfg.hosts).map(|i| format!("h{i}")).collect();
    let mut rt = Runtime::builder()
        .fast()
        .seed(cfg.seed)
        .nodes(names.iter().cloned())
        .class(test_object_class())
        .trace(cfg.check_invariants)
        .build();
    rt.deploy_class("TestObject", "h0")?;
    let sessions: Vec<Session> = names
        .iter()
        .map(|name| rt.session(name))
        .collect::<Result<_, _>>()?;
    for obj in OBJECTS {
        sessions[0].create_object("TestObject", obj, &(), Visibility::Public)?;
    }

    // Stub-pinned invocation surface: one lazily bound stub per
    // (session, object). A stub outlives re-creations of its object on
    // purpose — that is exactly the stale-identity scenario.
    let mut stubs: Vec<[Option<Stub>; 2]> = (0..cfg.hosts).map(|_| [None, None]).collect();

    // The fault schedule draws from its own RNG so op mix and fault mix
    // are independent of each other but both derived from the seed.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC4A0_5EED);
    let mut down: BTreeSet<usize> = BTreeSet::new();
    let mut cut: BTreeSet<(usize, usize)> = BTreeSet::new();

    let start = rt.now();
    let mut report = ChaosReport {
        ops: cfg.ops,
        ok: 0,
        unreachable: 0,
        not_found: 0,
        stale_identity: 0,
        coercion: 0,
        stalled: 0,
        other_errors: 0,
        rebinds: 0,
        lock_cycles: 0,
        midflight_faults: 0,
        recreated: 0,
        crashes: 0,
        restarts: 0,
        partitions: 0,
        heals: 0,
        sent: 0,
        dropped: 0,
        elapsed_us: 0,
        digest: 0xcbf2_9ce4_8422_2325,
    };

    for op_index in 0..cfg.ops {
        // ---- maybe inject a fault before this operation ----
        if rng.gen_range(0..100u8) < cfg.fault_percent {
            match rng.gen_range(0..4u8) {
                0 => {
                    // Crash a non-home node (bounded so a quorum stays up).
                    let victim = rng.gen_range(1..cfg.hosts);
                    if !down.contains(&victim) && down.len() < cfg.hosts / 2 {
                        rt.crash(&names[victim])?;
                        down.insert(victim);
                        report.crashes += 1;
                        fold(&mut report.digest, 100 + victim as u64);
                    }
                }
                1 => {
                    // Restart a crashed node (fresh, empty incarnation).
                    if !down.is_empty() {
                        let nth = rng.gen_range(0..down.len());
                        let victim = *down.iter().nth(nth).expect("nth < len");
                        rt.restart(&names[victim])?;
                        down.remove(&victim);
                        report.restarts += 1;
                        fold(&mut report.digest, 200 + victim as u64);
                    }
                }
                2 => {
                    // Cut a link (bounded to keep the run interesting).
                    let a = rng.gen_range(0..cfg.hosts);
                    let b = rng.gen_range(0..cfg.hosts);
                    if a != b && cut.len() < cfg.hosts && cut.insert(pair(a, b)) {
                        rt.partition_between(&names[a], &names[b])?;
                        report.partitions += 1;
                        fold(&mut report.digest, 300 + (a * cfg.hosts + b) as u64);
                    }
                }
                _ => {
                    // Heal a cut link.
                    if !cut.is_empty() {
                        let nth = rng.gen_range(0..cut.len());
                        let (a, b) = *cut.iter().nth(nth).expect("nth < len");
                        cut.remove(&(a, b));
                        rt.heal_between(&names[a], &names[b])?;
                        report.heals += 1;
                        fold(&mut report.digest, 400 + (a * cfg.hosts + b) as u64);
                    }
                }
            }
        }

        // ---- run one operation from a live client ----
        let ups: Vec<usize> = (0..cfg.hosts).filter(|i| !down.contains(i)).collect();
        let client = ups[rng.gen_range(0..ups.len())];
        let to = rng.gen_range(0..cfg.hosts); // possibly down: that's the point
        let obj_idx = rng.gen_range(0..OBJECTS.len());
        let obj = OBJECTS[obj_idx];
        let session = &sessions[client];
        let kind = rng.gen_range(0..100u8);

        let result: Result<Option<i64>, MageError> = if kind < cfg.lock_percent {
            // Lock-heavy schedule: an explicit §4.4 lock/unlock cycle
            // racing the crash adversary — the queue may sit on a node
            // that dies mid-cycle, the holder may lose reachability
            // before it can release, waiters may belong to incarnations
            // that no longer exist.
            match session.lock(obj, &names[to]) {
                Ok(_kind) => match session.unlock(obj) {
                    Ok(()) => {
                        report.lock_cycles += 1;
                        Ok(None)
                    }
                    Err(e) => Err(e),
                },
                Err(e) => Err(e),
            }
        } else if kind < cfg.lock_percent + cfg.stub_percent {
            // Stub-pinned invocation: the stale-identity surface. The
            // stub deliberately survives re-creations of its object.
            if stubs[client][obj_idx].is_none() {
                stubs[client][obj_idx] = session.bind(&Cle::new("TestObject", obj)).ok();
            }
            match &stubs[client][obj_idx] {
                Some(stub) => session.call(stub, methods::INC, &()).map(Some),
                None => Err(MageError::NotFound(obj.to_owned())),
            }
        } else {
            // Mixed-model attribute operation; REV/GREV are sometimes
            // guarded (lock-bracketed binds racing crashes).
            let guard = rng.gen_range(0..100u8) < 30;
            let attr: Box<dyn MobilityAttribute> = match rng.gen_range(0..5u8) {
                0 => {
                    let rev = Rev::new("TestObject", obj, names[to].clone());
                    Box::new(if guard { rev.guarded() } else { rev })
                }
                1 => Box::new(Cod::new("TestObject", obj)),
                2 => {
                    let grev = Grev::new("TestObject", obj, names[to].clone());
                    Box::new(if guard { grev.guarded() } else { grev })
                }
                3 => Box::new(MobileAgent::new("TestObject", obj, names[to].clone())),
                _ => Box::new(Cle::new("TestObject", obj)),
            };
            if rng.gen_range(0..100u8) < cfg.midflight_percent {
                // Mid-flight fault: start the bind, run the protocol a
                // few events, then crash a node or cut a link while the
                // move/class-transfer/find is in the air (this is what
                // hits `receive` and `receiveClass` halfway).
                match session.bind_invoke_async(attr.as_ref(), methods::INC, &()) {
                    Ok(pending) => {
                        let steps = rng.gen_range(1..40u32);
                        for _ in 0..steps {
                            if !rt.step() {
                                break;
                            }
                        }
                        if rng.gen_range(0..2u8) == 0 {
                            // Crash someone other than the client and h0.
                            let victim = rng.gen_range(1..cfg.hosts);
                            if victim != client
                                && !down.contains(&victim)
                                && down.len() < cfg.hosts / 2
                            {
                                rt.crash(&names[victim])?;
                                down.insert(victim);
                                report.crashes += 1;
                                report.midflight_faults += 1;
                                fold(&mut report.digest, 500 + victim as u64);
                            }
                        } else {
                            let a = rng.gen_range(0..cfg.hosts);
                            let b = rng.gen_range(0..cfg.hosts);
                            if a != b && cut.len() < cfg.hosts && cut.insert(pair(a, b)) {
                                rt.partition_between(&names[a], &names[b])?;
                                report.partitions += 1;
                                report.midflight_faults += 1;
                                fold(&mut report.digest, 600 + (a * cfg.hosts + b) as u64);
                            }
                        }
                        pending.wait().map(|(_, v)| v)
                    }
                    Err(e) => Err(e),
                }
            } else {
                session
                    .bind_invoke(attr.as_ref(), methods::INC, &())
                    .map(|(_, v)| v)
            }
        };

        let (code, detail) = outcome_code(&result);
        fold(&mut report.digest, op_index as u64);
        fold(&mut report.digest, code);
        fold(&mut report.digest, detail);
        match &result {
            Ok(_) => report.ok += 1,
            Err(MageError::Unreachable { .. }) => report.unreachable += 1,
            Err(MageError::NotFound(_)) => {
                report.not_found += 1;
                // The object died with its host; re-home it so the soak
                // keeps exercising migrations rather than failing forever.
                // Stubs bound to the dead incarnation stay stale on
                // purpose — their next call must surface StaleIdentity.
                if sessions[0]
                    .create_object("TestObject", obj, &(), Visibility::Public)
                    .is_ok()
                {
                    report.recreated += 1;
                    fold(&mut report.digest, 0x5EED);
                }
            }
            Err(MageError::StaleIdentity { .. }) => {
                report.stale_identity += 1;
                // The typed refusal arrived; recovery is an *explicit*
                // rebind to whatever answers to the name now.
                if let Some(stub) = stubs[client][obj_idx].take() {
                    match session.rebind(&stub) {
                        Ok(fresh) => {
                            stubs[client][obj_idx] = Some(fresh);
                            report.rebinds += 1;
                            fold(&mut report.digest, 0xB1D);
                        }
                        Err(_) => {
                            // Nothing answers right now; a later stub op
                            // re-binds from scratch.
                        }
                    }
                }
            }
            Err(MageError::Coercion { .. } | MageError::NotApplicable { .. }) => {
                report.coercion += 1;
            }
            Err(MageError::Sim(_)) => report.stalled += 1,
            Err(_) => report.other_errors += 1,
        }
    }

    // Drain stragglers (one-way agent invokes, late retransmissions);
    // a bounded budget turns any livelock into an error, not a hang.
    rt.run_until_idle()?;

    report.sent = rt.world().metrics().net.sent;
    report.dropped = rt.world().metrics().net.dropped;
    report.elapsed_us = (rt.now() - start).as_micros();

    let invariants = cfg.check_invariants.then(|| check_trace(&rt, cfg.hosts));
    Ok((report, invariants))
}

/// Replays the recorded event trace and checks the protocol invariants.
///
/// The epoch timeline of every node is reconstructed from the world's
/// own crash notes, so the wire-carried epochs in the invariant markers
/// are validated against an *independent* account of who was alive when.
fn check_trace(rt: &Runtime, hosts: usize) -> InvariantReport {
    let mut inv = InvariantReport::default();
    let mut epochs = vec![0u64; hosts];
    // (caller, caller_epoch, call_id) -> executed once
    let mut execs: BTreeSet<(u64, u64, u64)> = BTreeSet::new();
    // (host, client) -> epochs below this are purged at `host`
    let mut purged: BTreeMap<(usize, u64), u64> = BTreeMap::new();

    let world = rt.world();
    for event in world.trace().events() {
        let TraceEvent::Note { node, text, .. } = event else {
            continue;
        };
        let at = node.index();
        if let Some(rest) = text.strip_prefix("crashed (epoch ") {
            if let Ok(epoch) = rest.trim_end_matches(')').parse::<u64>() {
                epochs[at] = epoch;
            }
        } else if let Some(rest) = text.strip_prefix("invariant:exec:") {
            let mut it = rest.split(':').filter_map(|f| f.parse::<u64>().ok());
            if let (Some(caller), Some(call_id), Some(epoch)) = (it.next(), it.next(), it.next()) {
                inv.execs += 1;
                if !execs.insert((caller, epoch, call_id)) {
                    inv.duplicate_execs += 1;
                }
            }
        } else if let Some(rest) = text.strip_prefix("invariant:rsp-accepted:") {
            let mut it = rest.split(':').filter_map(|f| f.parse::<u64>().ok());
            if let (Some(_call_id), Some(req_epoch), Some(_self_epoch)) =
                (it.next(), it.next(), it.next())
            {
                inv.rsp_accepts += 1;
                if req_epoch != epochs[at] {
                    inv.stale_rsp_accepts += 1;
                }
            }
        } else if text.starts_with("invariant:stale-rsp-dropped:") {
            inv.stale_rsp_dropped += 1;
        } else if let Some(rest) = text.strip_prefix("invariant:purged:") {
            let mut it = rest.split(':').filter_map(|f| f.parse::<u64>().ok());
            if let (Some(client), Some(epoch)) = (it.next(), it.next()) {
                purged.insert((at, client), epoch);
            }
        } else if let Some(rest) = text.strip_prefix("invariant:grant:") {
            let mut it = rest.split(':').filter_map(|f| f.parse::<u64>().ok());
            if let (Some(_name), Some(client), Some(epoch)) = (it.next(), it.next(), it.next()) {
                inv.grants += 1;
                // A grant may race a restart the granting node has not
                // heard about yet (the reply is then discarded by the
                // receiver's epoch echo — covered by stale_rsp_accepts);
                // but a grant to an epoch the granter itself had already
                // purged is a straight violation.
                if purged
                    .get(&(at, client))
                    .is_some_and(|&floor| epoch < floor)
                {
                    inv.stale_grants += 1;
                }
            }
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChaosConfig {
        ChaosConfig {
            seed: 9,
            hosts: 4,
            ops: 150,
            fault_percent: 25,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn every_operation_resolves() {
        let report = run(&small()).unwrap();
        assert_eq!(
            report.resolved(),
            report.ops,
            "no operation may hang: {report:?}"
        );
        // The non-tautological half of the invariant: a hang or livelock
        // would surface as a budget-bounded Sim error in `stalled`.
        assert_eq!(report.stalled, 0, "{report:?}");
        assert_eq!(report.other_errors, 0, "{report:?}");
        assert!(report.ok > 0, "some operations must succeed: {report:?}");
    }

    #[test]
    fn faults_actually_happen() {
        let report = run(&small()).unwrap();
        assert!(report.crashes > 0, "{report:?}");
        assert!(report.restarts > 0, "{report:?}");
        assert!(report.partitions > 0, "{report:?}");
        assert!(report.dropped > 0, "{report:?}");
        assert!(
            report.unreachable + report.not_found + report.stale_identity > 0,
            "faults must surface as typed errors: {report:?}"
        );
    }

    #[test]
    fn lock_cycles_and_midflight_faults_exercise() {
        let report = run(&ChaosConfig {
            ops: 400,
            ..small()
        })
        .unwrap();
        assert!(report.lock_cycles > 0, "{report:?}");
        assert!(report.midflight_faults > 0, "{report:?}");
    }

    #[test]
    fn stale_stubs_surface_typed_and_rebind() {
        // Enough ops and faults that objects get lost and re-created
        // while stubs are still pinned to the dead incarnations.
        let report = run(&ChaosConfig {
            seed: 11,
            hosts: 4,
            ops: 600,
            fault_percent: 30,
            ..ChaosConfig::default()
        })
        .unwrap();
        assert!(report.recreated > 0, "{report:?}");
        assert!(
            report.stale_identity > 0,
            "re-creations must be detected by stale stubs: {report:?}"
        );
        assert!(report.rebinds > 0, "{report:?}");
    }

    #[test]
    fn invariants_hold_over_the_trace() {
        let (report, inv) = run_checked(&ChaosConfig {
            check_invariants: true,
            ..small()
        })
        .unwrap();
        let inv = inv.expect("invariant checking was requested");
        assert_eq!(inv.violations(), 0, "{inv:?}");
        assert!(inv.execs > 0, "{inv:?}");
        assert!(inv.rsp_accepts > 0, "{inv:?}");
        assert!(report.ok > 0);
    }

    #[test]
    fn same_seed_replays_identically() {
        let a = run(&small()).unwrap();
        let b = run(&small()).unwrap();
        assert_eq!(a, b, "chaos runs must be deterministic per seed");
    }

    #[test]
    fn tracing_does_not_change_behaviour() {
        // The invariant-checked run must replay the exact same digest as
        // the untraced run: observation must not perturb the system.
        let base = run(&small()).unwrap();
        let (traced, _) = run_checked(&ChaosConfig {
            check_invariants: true,
            ..small()
        })
        .unwrap();
        assert_eq!(base.digest, traced.digest);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run(&small()).unwrap();
        let b = run(&ChaosConfig {
            seed: 10,
            ..small()
        })
        .unwrap();
        assert_ne!(a.digest, b.digest);
    }
}
