//! Chaos soak workload: mixed-model migrations, lock contention and stub
//! invocations under seeded crashes, restarts and partitions — with
//! faults injected both *between* operations and *mid-protocol*.
//!
//! The tentpole invariants of the fault-tolerance subsystem:
//!
//! * **Typed partial failure** — under arbitrary crash/restart/partition
//!   schedules, every driver operation either completes or resolves to a
//!   typed [`MageError`]; it never hangs.
//! * **No silent rebinds** — a stub pinned to an object incarnation
//!   either reaches *that* object or resolves to
//!   [`MageError::StaleIdentity`]; a re-created same-name object never
//!   silently serves a stale stub's calls. Rebinding is an explicit act
//!   ([`Session::rebind`] — or the policy-aware automatic rebind of
//!   [`Session::call_handle`] on replicated handles), and this workload
//!   performs (and counts) both.
//! * **Durable recovery** — the `Durability::Replicated` object survives
//!   crashes of whatever node hosts it: its state is restored from the
//!   backup home's snapshot, and the soak counts full
//!   crash→restore→rebind recoveries
//!   ([`ChaosReport::durable_recoveries`]).
//!
//! The run drives thousands of REV/GREV/COD/CLE/mobile-agent operations
//! (some guarded with §4.4 locks), explicit lock/unlock cycles,
//! stub-pinned invocations against two volatile shared objects, and
//! policy-handle invocations of a replicated object, while a seeded
//! adversary crashes nodes, restarts them empty, cuts and heals links —
//! and, for a slice of the operations, injects the fault *while the
//! protocol is mid-flight* (crash during `receive`/`receiveClass`, cuts
//! during find walks). It classifies every outcome and folds the whole
//! run into a digest, so two runs with the same seed can be checked for
//! identical behaviour event-for-event.
//!
//! With [`ChaosConfig::check_invariants`] the run records a full trace
//! and checks protocol invariants *over the event trace* (not just op
//! resolution): at-most-once execution per call id, no response accepted
//! by a dead incarnation of its caller, no lock grant to a waiter from
//! an incarnation the granting node had already purged, snapshot epochs
//! strictly monotone per backup home, and no restore serving a snapshot
//! older than the newest one that backup acknowledged.
//!
//! Conventions:
//!
//! * `h0` is the protected home namespace: it is never crashed, so the
//!   class library stays deployed, lost objects can be re-created, and
//!   the replicated object's fixed backup home survives.
//! * When an operation reports [`MageError::NotFound`] the shared object
//!   is presumed dead with its host; the driver re-creates it at `h0`
//!   (counted in [`ChaosReport::recreated`]; the replicated object is
//!   re-created replicated, in [`ChaosReport::durable_recreates`]).
//! * [`MageError::Unreachable`] is *not* grounds for re-creation — the
//!   object may be alive on the far side of a partition.

use std::collections::{BTreeMap, BTreeSet};

use mage_core::attribute::{Cle, Cod, Grev, MobileAgent, MobilityAttribute, Rev};
use mage_core::workload_support::{methods, test_object_class};
use mage_core::{Durability, MageError, ObjectHandle, ObjectSpec, Runtime, Session, Stub};
use mage_sim::TraceEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for both the runtime world and the fault schedule.
    pub seed: u64,
    /// Number of namespaces (`h0` … `h{hosts-1}`); at least 3.
    pub hosts: usize,
    /// Number of driver operations to run.
    pub ops: usize,
    /// Percent chance (0–100) that a fault action precedes an operation.
    pub fault_percent: u8,
    /// Percent of operations that are explicit lock/unlock cycles
    /// (lock-heavy schedules racing the crash adversary).
    pub lock_percent: u8,
    /// Percent of operations that are stub-pinned invocations (the
    /// stale-identity surface).
    pub stub_percent: u8,
    /// Percent chance that an attribute operation runs asynchronously
    /// with a fault injected mid-protocol (crash during
    /// `receive`/`receiveClass`, cuts during find walks).
    pub midflight_percent: u8,
    /// Percent of operations that are policy-handle invocations of the
    /// `Durability::Replicated` object (the crash-recovery surface:
    /// checkpoints, restores, auto-rebinds).
    pub durable_percent: u8,
    /// Record a full trace and check protocol invariants over it.
    pub check_invariants: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 2001,
            hosts: 5,
            ops: 1_000,
            fault_percent: 15,
            lock_percent: 15,
            stub_percent: 15,
            midflight_percent: 10,
            durable_percent: 15,
            check_invariants: false,
        }
    }
}

/// Outcome of a chaos run. Two runs with the same [`ChaosConfig`] must
/// produce equal reports (including [`ChaosReport::digest`], which folds
/// every per-operation outcome and fault event in order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// Operations driven.
    pub ops: usize,
    /// Operations that completed successfully.
    pub ok: usize,
    /// Typed `Unreachable` outcomes (crashed or partitioned peers).
    pub unreachable: usize,
    /// Typed `NotFound` outcomes (object died with its host).
    pub not_found: usize,
    /// Typed `StaleIdentity` outcomes: a stale stub reached a re-created
    /// same-name object and was *refused* — the detection the incarnation
    /// machinery exists for. Each is followed by an explicit rebind
    /// attempt (see [`ChaosReport::rebinds`]).
    pub stale_identity: usize,
    /// Typed coercion rejections (expected for some attribute mixes).
    pub coercion: usize,
    /// Typed simulation outcomes (operation stalled because its own
    /// namespace lost the command to a crash).
    pub stalled: usize,
    /// Every other typed error.
    pub other_errors: usize,
    /// Explicit stub rebinds performed after `StaleIdentity`.
    pub rebinds: usize,
    /// Lock/unlock cycles fully completed.
    pub lock_cycles: usize,
    /// Faults injected mid-protocol (as opposed to between operations).
    pub midflight_faults: usize,
    /// Times a shared object was re-created at `h0` after being lost.
    pub recreated: usize,
    /// Policy-handle invocations of the replicated object driven.
    pub durable_ops: usize,
    /// Crash→restore→rebind recoveries observed through a durable
    /// handle: the call succeeded after an automatic rebind to a fresh
    /// incarnation (state served from the backup snapshot).
    pub durable_recoveries: usize,
    /// Times the replicated object was truly lost (primary *and* backup
    /// gone) and re-created replicated.
    pub durable_recreates: usize,
    /// World metric: durability snapshots accepted at backup homes.
    pub snapshots: u64,
    /// World metric: objects restored from a backup snapshot.
    pub restores: u64,
    /// World metric: invocations refused with a typed `StaleIdentity`.
    pub stale_refusals: u64,
    /// World metric: lock requests refused with a typed `StaleIdentity`.
    pub stale_lock_refusals: u64,
    /// World metric: responses to a dead incarnation dropped on receipt.
    pub stale_replies_dropped: u64,
    /// World metric: stub rebinds (explicit and handle-automatic).
    pub world_rebinds: u64,
    /// Fault actions applied.
    pub crashes: usize,
    /// Nodes brought back.
    pub restarts: usize,
    /// Links cut.
    pub partitions: usize,
    /// Links healed.
    pub heals: usize,
    /// Messages sent / dropped by the fabric (trace equivalence check).
    pub sent: u64,
    /// Messages dropped (loss, partitions, dead nodes).
    pub dropped: u64,
    /// Virtual time consumed, in microseconds.
    pub elapsed_us: u64,
    /// FNV-1a fold of every fault event and operation outcome in order.
    pub digest: u64,
}

impl ChaosReport {
    /// Operations that resolved (success or typed error).
    ///
    /// Hang-protection is *enforced*, not merely counted: every blocking
    /// wait runs under the world's bounded event budget, so a protocol
    /// that stops making progress (queue drained, op unresolved) or
    /// livelocks (budget exhausted) surfaces as [`MageError::Sim`] and
    /// lands in [`ChaosReport::stalled`]. A healthy run therefore shows
    /// `resolved() == ops` **and** `stalled == 0` — the second condition
    /// is the one a hang regression would break.
    pub fn resolved(&self) -> usize {
        self.ok
            + self.unreachable
            + self.not_found
            + self.stale_identity
            + self.coercion
            + self.stalled
            + self.other_errors
    }
}

/// Protocol invariants checked over the recorded event trace (not just
/// operation resolution). All violation counters must be zero; the
/// informational counters prove the checks had material to chew on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvariantReport {
    /// Call executions observed (one note per non-duplicate execution).
    pub execs: usize,
    /// VIOLATION: the same `(caller, caller-epoch, call id)` executed
    /// more than once — the at-most-once dedup machinery failed.
    pub duplicate_execs: usize,
    /// Responses accepted by callers (matched against a pending call).
    pub rsp_accepts: usize,
    /// VIOLATION: a response was accepted by a node whose incarnation
    /// differs from the one that issued the call (the wire-carried
    /// request-epoch echo failed to protect the reused call-id space).
    pub stale_rsp_accepts: usize,
    /// Responses correctly discarded because they answered a previous
    /// incarnation's call (the machinery working as intended).
    pub stale_rsp_dropped: usize,
    /// Lock grants delivered to waiters.
    pub grants: usize,
    /// VIOLATION: a grant went to a waiter from an incarnation the
    /// granting node had already purged.
    pub stale_grants: usize,
    /// Durability snapshots accepted at backup homes.
    pub checkpoints: usize,
    /// Objects restored from a backup snapshot.
    pub restores: usize,
    /// VIOLATION: a backup accepted a snapshot epoch not strictly newer
    /// than the one it already held for the name (monotonicity broke).
    pub ckpt_regressions: usize,
    /// VIOLATION: a restore served a snapshot older than the newest one
    /// that backup had acknowledged for the name — a restored object must
    /// never serve state older than the last acked (checkpointed)
    /// mutation.
    pub stale_restores: usize,
}

impl InvariantReport {
    /// Total invariant violations (must be zero).
    pub fn violations(&self) -> usize {
        self.duplicate_execs
            + self.stale_rsp_accepts
            + self.stale_grants
            + self.ckpt_regressions
            + self.stale_restores
    }
}

fn fold(digest: &mut u64, value: u64) {
    // FNV-1a over 8-byte words: cheap, deterministic, order-sensitive.
    for byte in value.to_le_bytes() {
        *digest ^= u64::from(byte);
        *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Classification codes folded into the digest (stable across runs).
fn outcome_code(result: &Result<Option<i64>, MageError>) -> (u64, u64) {
    match result {
        Ok(v) => (0, v.unwrap_or(-1) as u64),
        Err(MageError::Unreachable { peer }) => (1, u64::from(*peer)),
        Err(MageError::NotFound(_)) => (2, 0),
        Err(MageError::Coercion { .. } | MageError::NotApplicable { .. }) => (3, 0),
        Err(MageError::Sim(_)) => (4, 0),
        Err(MageError::ClassUnavailable(_)) => (5, 0),
        Err(MageError::Denied(_)) => (6, 0),
        Err(MageError::BadPlan(_)) => (7, 0),
        Err(MageError::Rmi(_)) => (8, 0),
        Err(MageError::Codec(_)) => (9, 0),
        Err(MageError::StaleIdentity { fresh, .. }) => (11, *fresh),
        Err(_) => (10, 0),
    }
}

/// Volatile shared objects of the soak.
const OBJECTS: [&str; 2] = ["shared", "shared2"];
/// The `Durability::Replicated` object of the soak.
const DURABLE: &str = "durable";
/// Every object an attribute or lock operation may target.
const POOL: [&str; 3] = ["shared", "shared2", DURABLE];

/// The replicated object's creation spec: born on crashable `h1` (the
/// attribute mix keeps moving it), checkpointed to the protected home
/// `h0` — so a crash of its current host is recoverable, repeatedly.
fn durable_spec(names: &[String]) -> ObjectSpec {
    ObjectSpec::new(DURABLE)
        .class("TestObject")
        .durability(Durability::Replicated { backups: 1 })
        .mobility(Rev::new("TestObject", DURABLE, names[1].clone()))
        .backup(names[0].clone())
}

fn pair(a: usize, b: usize) -> (usize, usize) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Runs the chaos workload (no invariant checking; see
/// [`run_checked`] for the trace-checked form).
///
/// # Errors
///
/// Returns only infrastructure failures (bad configuration); operation
/// failures under fault injection are *outcomes* counted in the report.
///
/// # Panics
///
/// Panics if `cfg.hosts < 3`.
pub fn run(cfg: &ChaosConfig) -> Result<ChaosReport, MageError> {
    run_checked(cfg).map(|(report, _)| report)
}

/// Runs the chaos workload; when [`ChaosConfig::check_invariants`] is
/// set, also returns the trace-derived [`InvariantReport`].
///
/// # Errors
///
/// See [`run`].
///
/// # Panics
///
/// Panics if `cfg.hosts < 3`.
#[allow(clippy::too_many_lines)]
pub fn run_checked(cfg: &ChaosConfig) -> Result<(ChaosReport, Option<InvariantReport>), MageError> {
    assert!(cfg.hosts >= 3, "chaos needs at least three hosts");
    let names: Vec<String> = (0..cfg.hosts).map(|i| format!("h{i}")).collect();
    let mut rt = Runtime::builder()
        .fast()
        .seed(cfg.seed)
        .nodes(names.iter().cloned())
        .class(test_object_class())
        .trace(cfg.check_invariants)
        .build();
    rt.deploy_class("TestObject", "h0")?;
    let sessions: Vec<Session> = names
        .iter()
        .map(|name| rt.session(name))
        .collect::<Result<_, _>>()?;
    for obj in OBJECTS {
        sessions[0].create(ObjectSpec::new(obj).class("TestObject"))?;
    }
    // The replicated object: born on a crashable node (h1), with the
    // protected home h0 as its fixed backup — so a crash of whatever
    // node currently hosts it is recoverable from h0, and the attribute
    // mix keeps moving it back onto crashable nodes.
    sessions[0].create(durable_spec(&names))?;

    // Stub-pinned invocation surface: one lazily bound stub per
    // (session, object). A stub outlives re-creations of its object on
    // purpose — that is exactly the stale-identity scenario.
    let mut stubs: Vec<[Option<Stub>; 2]> = (0..cfg.hosts).map(|_| [None, None]).collect();
    // Policy-handle surface for the replicated object, one per client.
    let mut handles: Vec<Option<ObjectHandle>> = (0..cfg.hosts).map(|_| None).collect();

    // The fault schedule draws from its own RNG so op mix and fault mix
    // are independent of each other but both derived from the seed.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC4A0_5EED);
    let mut down: BTreeSet<usize> = BTreeSet::new();
    let mut cut: BTreeSet<(usize, usize)> = BTreeSet::new();

    let start = rt.now();
    let mut report = ChaosReport {
        ops: cfg.ops,
        ok: 0,
        unreachable: 0,
        not_found: 0,
        stale_identity: 0,
        coercion: 0,
        stalled: 0,
        other_errors: 0,
        rebinds: 0,
        lock_cycles: 0,
        midflight_faults: 0,
        recreated: 0,
        durable_ops: 0,
        durable_recoveries: 0,
        durable_recreates: 0,
        snapshots: 0,
        restores: 0,
        stale_refusals: 0,
        stale_lock_refusals: 0,
        stale_replies_dropped: 0,
        world_rebinds: 0,
        crashes: 0,
        restarts: 0,
        partitions: 0,
        heals: 0,
        sent: 0,
        dropped: 0,
        elapsed_us: 0,
        digest: 0xcbf2_9ce4_8422_2325,
    };

    for op_index in 0..cfg.ops {
        // ---- maybe inject a fault before this operation ----
        if rng.gen_range(0..100u8) < cfg.fault_percent {
            match rng.gen_range(0..4u8) {
                0 => {
                    // Crash a non-home node (bounded so a quorum stays up).
                    let victim = rng.gen_range(1..cfg.hosts);
                    if !down.contains(&victim) && down.len() < cfg.hosts / 2 {
                        rt.crash(&names[victim])?;
                        down.insert(victim);
                        report.crashes += 1;
                        fold(&mut report.digest, 100 + victim as u64);
                    }
                }
                1 => {
                    // Restart a crashed node (fresh, empty incarnation).
                    if !down.is_empty() {
                        let nth = rng.gen_range(0..down.len());
                        let victim = *down.iter().nth(nth).expect("nth < len");
                        rt.restart(&names[victim])?;
                        down.remove(&victim);
                        report.restarts += 1;
                        fold(&mut report.digest, 200 + victim as u64);
                    }
                }
                2 => {
                    // Cut a link (bounded to keep the run interesting).
                    let a = rng.gen_range(0..cfg.hosts);
                    let b = rng.gen_range(0..cfg.hosts);
                    if a != b && cut.len() < cfg.hosts && cut.insert(pair(a, b)) {
                        rt.partition_between(&names[a], &names[b])?;
                        report.partitions += 1;
                        fold(&mut report.digest, 300 + (a * cfg.hosts + b) as u64);
                    }
                }
                _ => {
                    // Heal a cut link.
                    if !cut.is_empty() {
                        let nth = rng.gen_range(0..cut.len());
                        let (a, b) = *cut.iter().nth(nth).expect("nth < len");
                        cut.remove(&(a, b));
                        rt.heal_between(&names[a], &names[b])?;
                        report.heals += 1;
                        fold(&mut report.digest, 400 + (a * cfg.hosts + b) as u64);
                    }
                }
            }
        }

        // ---- run one operation from a live client ----
        let ups: Vec<usize> = (0..cfg.hosts).filter(|i| !down.contains(i)).collect();
        let client = ups[rng.gen_range(0..ups.len())];
        let to = rng.gen_range(0..cfg.hosts); // possibly down: that's the point
        let mut obj_idx = rng.gen_range(0..POOL.len());
        let session = &sessions[client];
        let kind = rng.gen_range(0..100u8);
        let (lock_hi, stub_hi) = (cfg.lock_percent, cfg.lock_percent + cfg.stub_percent);
        let dur_hi = stub_hi + cfg.durable_percent;
        if kind >= lock_hi && kind < stub_hi {
            // Stub-pinned ops target the volatile objects; the durable
            // object's pinned surface is the policy-handle op below.
            obj_idx %= OBJECTS.len();
        } else if kind >= stub_hi && kind < dur_hi {
            obj_idx = POOL.len() - 1;
        }
        let obj = POOL[obj_idx];

        let result: Result<Option<i64>, MageError> = if kind < lock_hi {
            // Lock-heavy schedule: an explicit §4.4 lock/unlock cycle
            // racing the crash adversary — the queue may sit on a node
            // that dies mid-cycle, the holder may lose reachability
            // before it can release, waiters may belong to incarnations
            // that no longer exist.
            match session.lock(obj, &names[to]) {
                Ok(_kind) => match session.unlock(obj) {
                    Ok(()) => {
                        report.lock_cycles += 1;
                        Ok(None)
                    }
                    Err(e) => Err(e),
                },
                Err(e) => Err(e),
            }
        } else if kind < stub_hi {
            // Stub-pinned invocation: the stale-identity surface. The
            // stub deliberately survives re-creations of its object.
            if stubs[client][obj_idx].is_none() {
                stubs[client][obj_idx] = session.bind(&Cle::new("TestObject", obj)).ok();
            }
            match &stubs[client][obj_idx] {
                Some(stub) => session.call(stub, methods::INC, &()).map(Some),
                None => Err(MageError::NotFound(obj.to_owned())),
            }
        } else if kind < dur_hi {
            // Policy-handle invocation of the replicated object: the
            // crash-recovery surface. A crash of its host shows up as a
            // StaleIdentity that `call_handle` resolves by automatic
            // rebind — the restored object serves its checkpointed state.
            report.durable_ops += 1;
            if handles[client].is_none() {
                handles[client] = session
                    .bind(&Cle::new("TestObject", DURABLE))
                    .ok()
                    .map(|stub| {
                        ObjectHandle::new(stub, Durability::Replicated { backups: 1 }, true)
                    });
            }
            match handles[client].as_mut() {
                Some(handle) => {
                    let before = handle.incarnation();
                    match session.call_handle(handle, methods::INC, &()) {
                        Ok(v) => {
                            if handle.incarnation() != before {
                                // The call outlived a crash of the
                                // object's host: restore + auto-rebind.
                                report.durable_recoveries += 1;
                                fold(&mut report.digest, 0xD0B1);
                            }
                            Ok(Some(v))
                        }
                        Err(e) => {
                            // Dead handle: drop it so the next durable op
                            // re-binds from scratch.
                            handles[client] = None;
                            Err(e)
                        }
                    }
                }
                None => Err(MageError::NotFound(DURABLE.to_owned())),
            }
        } else {
            // Mixed-model attribute operation; REV/GREV are sometimes
            // guarded (lock-bracketed binds racing crashes).
            let guard = rng.gen_range(0..100u8) < 30;
            let attr: Box<dyn MobilityAttribute> = match rng.gen_range(0..5u8) {
                0 => {
                    let rev = Rev::new("TestObject", obj, names[to].clone());
                    Box::new(if guard { rev.guarded() } else { rev })
                }
                1 => Box::new(Cod::new("TestObject", obj)),
                2 => {
                    let grev = Grev::new("TestObject", obj, names[to].clone());
                    Box::new(if guard { grev.guarded() } else { grev })
                }
                3 => Box::new(MobileAgent::new("TestObject", obj, names[to].clone())),
                _ => Box::new(Cle::new("TestObject", obj)),
            };
            if rng.gen_range(0..100u8) < cfg.midflight_percent {
                // Mid-flight fault: start the bind, run the protocol a
                // few events, then crash a node or cut a link while the
                // move/class-transfer/find is in the air (this is what
                // hits `receive` and `receiveClass` halfway).
                match session.bind_invoke_async(attr.as_ref(), methods::INC, &()) {
                    Ok(pending) => {
                        let steps = rng.gen_range(1..40u32);
                        for _ in 0..steps {
                            if !rt.step() {
                                break;
                            }
                        }
                        if rng.gen_range(0..2u8) == 0 {
                            // Crash someone other than the client and h0.
                            let victim = rng.gen_range(1..cfg.hosts);
                            if victim != client
                                && !down.contains(&victim)
                                && down.len() < cfg.hosts / 2
                            {
                                rt.crash(&names[victim])?;
                                down.insert(victim);
                                report.crashes += 1;
                                report.midflight_faults += 1;
                                fold(&mut report.digest, 500 + victim as u64);
                            }
                        } else {
                            let a = rng.gen_range(0..cfg.hosts);
                            let b = rng.gen_range(0..cfg.hosts);
                            if a != b && cut.len() < cfg.hosts && cut.insert(pair(a, b)) {
                                rt.partition_between(&names[a], &names[b])?;
                                report.partitions += 1;
                                report.midflight_faults += 1;
                                fold(&mut report.digest, 600 + (a * cfg.hosts + b) as u64);
                            }
                        }
                        pending.wait().map(|(_, v)| v)
                    }
                    Err(e) => Err(e),
                }
            } else {
                session
                    .bind_invoke(attr.as_ref(), methods::INC, &())
                    .map(|(_, v)| v)
            }
        };

        let (code, detail) = outcome_code(&result);
        fold(&mut report.digest, op_index as u64);
        fold(&mut report.digest, code);
        fold(&mut report.digest, detail);
        match &result {
            Ok(_) => report.ok += 1,
            Err(MageError::Unreachable { .. }) => report.unreachable += 1,
            Err(MageError::NotFound(_)) => {
                report.not_found += 1;
                if obj == DURABLE {
                    // Even the backup could not help (or the restore
                    // chain dead-ended): re-create replicated.
                    if sessions[0].create(durable_spec(&names)).is_ok() {
                        report.durable_recreates += 1;
                        fold(&mut report.digest, 0xD5ED);
                    }
                } else if sessions[0]
                    .create(ObjectSpec::new(obj).class("TestObject"))
                    .is_ok()
                {
                    // The volatile object died with its host; re-home it
                    // so the soak keeps exercising migrations rather than
                    // failing forever. Stubs bound to the dead
                    // incarnation stay stale on purpose — their next call
                    // must surface StaleIdentity.
                    report.recreated += 1;
                    fold(&mut report.digest, 0x5EED);
                }
            }
            Err(MageError::StaleIdentity { .. }) => {
                report.stale_identity += 1;
                // The typed refusal arrived; recovery is an *explicit*
                // rebind to whatever answers to the name now. (Durable
                // handle ops auto-rebind inside call_handle; a
                // StaleIdentity escaping one has already dropped the
                // handle above.)
                if obj_idx < OBJECTS.len() {
                    if let Some(stub) = stubs[client][obj_idx].take() {
                        match session.rebind(&stub) {
                            Ok(fresh) => {
                                stubs[client][obj_idx] = Some(fresh);
                                report.rebinds += 1;
                                fold(&mut report.digest, 0xB1D);
                            }
                            Err(_) => {
                                // Nothing answers right now; a later stub
                                // op re-binds from scratch.
                            }
                        }
                    }
                }
            }
            Err(MageError::Coercion { .. } | MageError::NotApplicable { .. }) => {
                report.coercion += 1;
            }
            Err(MageError::Sim(_)) => report.stalled += 1,
            Err(_) => report.other_errors += 1,
        }
    }

    // Drain stragglers (one-way agent invokes, late retransmissions);
    // a bounded budget turns any livelock into an error, not a hang.
    rt.run_until_idle()?;

    {
        let world = rt.world();
        let metrics = world.metrics();
        report.sent = metrics.net.sent;
        report.dropped = metrics.net.dropped;
        report.snapshots = metrics.counter("snapshots_stored");
        report.restores = metrics.counter("snapshot_restores");
        report.stale_refusals = metrics.counter("stale_identity_refusals");
        report.stale_lock_refusals = metrics.counter("stale_lock_refusals");
        report.stale_replies_dropped = metrics.counter("stale_replies_dropped");
        report.world_rebinds = metrics.counter("rebinds") + metrics.counter("auto_rebinds");
    }
    report.elapsed_us = (rt.now() - start).as_micros();

    let invariants = cfg.check_invariants.then(|| check_trace(&rt, cfg.hosts));
    Ok((report, invariants))
}

/// Replays the recorded event trace and checks the protocol invariants.
///
/// The epoch timeline of every node is reconstructed from the world's
/// own crash notes, so the wire-carried epochs in the invariant markers
/// are validated against an *independent* account of who was alive when.
fn check_trace(rt: &Runtime, hosts: usize) -> InvariantReport {
    let mut inv = InvariantReport::default();
    let mut epochs = vec![0u64; hosts];
    // (caller, caller_epoch, call_id) -> executed once
    let mut execs: BTreeSet<(u64, u64, u64)> = BTreeSet::new();
    // (host, client) -> epochs below this are purged at `host`
    let mut purged: BTreeMap<(usize, u64), u64> = BTreeMap::new();
    // (backup host, object name) -> newest (incarnation, epoch) accepted
    // there; ordering is lexicographic — a younger lineage supersedes an
    // older one, epochs increase within a lineage.
    let mut ckpt_epochs: BTreeMap<(usize, u64), (u64, u64)> = BTreeMap::new();

    let world = rt.world();
    for event in world.trace().events() {
        let TraceEvent::Note { node, text, .. } = event else {
            continue;
        };
        let at = node.index();
        if let Some(rest) = text.strip_prefix("crashed (epoch ") {
            if let Ok(epoch) = rest.trim_end_matches(')').parse::<u64>() {
                epochs[at] = epoch;
            }
        } else if let Some(rest) = text.strip_prefix("invariant:exec:") {
            let mut it = rest.split(':').filter_map(|f| f.parse::<u64>().ok());
            if let (Some(caller), Some(call_id), Some(epoch)) = (it.next(), it.next(), it.next()) {
                inv.execs += 1;
                if !execs.insert((caller, epoch, call_id)) {
                    inv.duplicate_execs += 1;
                }
            }
        } else if let Some(rest) = text.strip_prefix("invariant:rsp-accepted:") {
            let mut it = rest.split(':').filter_map(|f| f.parse::<u64>().ok());
            if let (Some(_call_id), Some(req_epoch), Some(_self_epoch)) =
                (it.next(), it.next(), it.next())
            {
                inv.rsp_accepts += 1;
                if req_epoch != epochs[at] {
                    inv.stale_rsp_accepts += 1;
                }
            }
        } else if text.starts_with("invariant:stale-rsp-dropped:") {
            inv.stale_rsp_dropped += 1;
        } else if let Some(rest) = text.strip_prefix("invariant:purged:") {
            let mut it = rest.split(':').filter_map(|f| f.parse::<u64>().ok());
            if let (Some(client), Some(epoch)) = (it.next(), it.next()) {
                purged.insert((at, client), epoch);
            }
        } else if let Some(rest) = text.strip_prefix("invariant:grant:") {
            let mut it = rest.split(':').filter_map(|f| f.parse::<u64>().ok());
            if let (Some(_name), Some(client), Some(epoch)) = (it.next(), it.next(), it.next()) {
                inv.grants += 1;
                // A grant may race a restart the granting node has not
                // heard about yet (the reply is then discarded by the
                // receiver's epoch echo — covered by stale_rsp_accepts);
                // but a grant to an epoch the granter itself had already
                // purged is a straight violation.
                if purged
                    .get(&(at, client))
                    .is_some_and(|&floor| epoch < floor)
                {
                    inv.stale_grants += 1;
                }
            }
        } else if let Some(rest) = text.strip_prefix("invariant:ckpt:") {
            let mut it = rest.split(':').filter_map(|f| f.parse::<u64>().ok());
            if let (Some(name), Some(inc), Some(epoch)) = (it.next(), it.next(), it.next()) {
                inv.checkpoints += 1;
                // Monotonicity: a backup only ever accepts snapshots
                // strictly newer (by lineage, then epoch) than what it
                // already holds.
                let held = ckpt_epochs.entry((at, name)).or_insert((0, 0));
                if (inc, epoch) <= *held {
                    inv.ckpt_regressions += 1;
                }
                *held = (*held).max((inc, epoch));
            }
        } else if let Some(rest) = text.strip_prefix("invariant:restore:") {
            let mut it = rest.split(':').filter_map(|f| f.parse::<u64>().ok());
            if let (Some(name), Some(inc), Some(epoch)) = (it.next(), it.next(), it.next()) {
                inv.restores += 1;
                // Freshness: a restored object must serve exactly the
                // newest snapshot this backup acknowledged for the name —
                // never state older than the last checkpointed mutation
                // of the newest lineage.
                if ckpt_epochs
                    .get(&(at, name))
                    .is_some_and(|&newest| (inc, epoch) < newest)
                {
                    inv.stale_restores += 1;
                }
            }
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChaosConfig {
        ChaosConfig {
            seed: 9,
            hosts: 4,
            ops: 150,
            fault_percent: 25,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn every_operation_resolves() {
        let report = run(&small()).unwrap();
        assert_eq!(
            report.resolved(),
            report.ops,
            "no operation may hang: {report:?}"
        );
        // The non-tautological half of the invariant: a hang or livelock
        // would surface as a budget-bounded Sim error in `stalled`.
        assert_eq!(report.stalled, 0, "{report:?}");
        assert_eq!(report.other_errors, 0, "{report:?}");
        assert!(report.ok > 0, "some operations must succeed: {report:?}");
    }

    #[test]
    fn faults_actually_happen() {
        let report = run(&small()).unwrap();
        assert!(report.crashes > 0, "{report:?}");
        assert!(report.restarts > 0, "{report:?}");
        assert!(report.partitions > 0, "{report:?}");
        assert!(report.dropped > 0, "{report:?}");
        assert!(
            report.unreachable + report.not_found + report.stale_identity > 0,
            "faults must surface as typed errors: {report:?}"
        );
    }

    #[test]
    fn lock_cycles_and_midflight_faults_exercise() {
        let report = run(&ChaosConfig {
            ops: 400,
            ..small()
        })
        .unwrap();
        assert!(report.lock_cycles > 0, "{report:?}");
        assert!(report.midflight_faults > 0, "{report:?}");
    }

    #[test]
    fn stale_stubs_surface_typed_and_rebind() {
        // Enough ops and faults that objects get lost and re-created
        // while stubs are still pinned to the dead incarnations.
        let report = run(&ChaosConfig {
            seed: 11,
            hosts: 4,
            ops: 600,
            fault_percent: 30,
            ..ChaosConfig::default()
        })
        .unwrap();
        assert!(report.recreated > 0, "{report:?}");
        assert!(
            report.stale_identity > 0,
            "re-creations must be detected by stale stubs: {report:?}"
        );
        assert!(report.rebinds > 0, "{report:?}");
    }

    #[test]
    fn durable_object_recovers_through_crashes() {
        // Enough ops and faults that the replicated object's host dies
        // while handles are live: the soak must observe at least one
        // full crash→restore→rebind recovery, and the world metrics must
        // show real checkpoint/restore traffic.
        let report = run(&ChaosConfig {
            seed: 11,
            hosts: 5,
            ops: 800,
            fault_percent: 30,
            ..ChaosConfig::default()
        })
        .unwrap();
        assert!(report.durable_ops > 0, "{report:?}");
        assert!(report.snapshots > 0, "{report:?}");
        assert!(report.restores > 0, "{report:?}");
        assert!(
            report.durable_recoveries > 0,
            "a crash of the replicated object's host must recover: {report:?}"
        );
        assert!(report.world_rebinds > 0, "{report:?}");
    }

    #[test]
    fn replication_invariants_hold_over_the_trace() {
        let (report, inv) = run_checked(&ChaosConfig {
            seed: 11,
            hosts: 5,
            ops: 800,
            fault_percent: 30,
            check_invariants: true,
            ..ChaosConfig::default()
        })
        .unwrap();
        let inv = inv.expect("invariant checking was requested");
        assert_eq!(inv.violations(), 0, "{inv:?}");
        assert!(inv.checkpoints > 0, "{inv:?}");
        assert!(inv.restores > 0, "{inv:?}");
        assert!(report.restores >= inv.restores as u64);
    }

    #[test]
    fn invariants_hold_over_the_trace() {
        let (report, inv) = run_checked(&ChaosConfig {
            check_invariants: true,
            ..small()
        })
        .unwrap();
        let inv = inv.expect("invariant checking was requested");
        assert_eq!(inv.violations(), 0, "{inv:?}");
        assert!(inv.execs > 0, "{inv:?}");
        assert!(inv.rsp_accepts > 0, "{inv:?}");
        assert!(report.ok > 0);
    }

    #[test]
    fn same_seed_replays_identically() {
        let a = run(&small()).unwrap();
        let b = run(&small()).unwrap();
        assert_eq!(a, b, "chaos runs must be deterministic per seed");
    }

    #[test]
    fn tracing_does_not_change_behaviour() {
        // The invariant-checked run must replay the exact same digest as
        // the untraced run: observation must not perturb the system.
        let base = run(&small()).unwrap();
        let (traced, _) = run_checked(&ChaosConfig {
            check_invariants: true,
            ..small()
        })
        .unwrap();
        assert_eq!(base.digest, traced.digest);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run(&small()).unwrap();
        let b = run(&ChaosConfig {
            seed: 10,
            ..small()
        })
        .unwrap();
        assert_ne!(a.digest, b.digest);
    }
}
