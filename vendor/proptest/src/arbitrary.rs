//! `any::<T>()` — default strategies per type.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

use crate::strategy::{random_char, Strategy};

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    // Bias towards boundary values the way upstream does, so
                    // edge cases show up within a small case budget.
                    match rng.gen_range(0u8..8) {
                        0 => 0 as $ty,
                        1 => <$ty>::MAX,
                        2 => <$ty>::MIN,
                        _ => rng.next_u64() as $ty,
                    }
                }
            }
        )*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    /// All bit patterns, including NaNs and infinities.
    fn arbitrary(rng: &mut StdRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    /// All bit patterns, including NaNs and infinities.
    fn arbitrary(rng: &mut StdRng) -> Self {
        f32::from_bits(rng.next_u32())
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> Self {
        random_char(rng)
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let len = rng.gen_range(0usize..32);
        (0..len).map(|_| random_char(rng)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut StdRng) -> Self {
        if rng.gen() {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let len = rng.gen_range(0usize..16);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

macro_rules! tuple_arbitrary {
    ($(($($name:ident),+);)*) => {
        $(
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        )*
    };
}

tuple_arbitrary! {
    (T0);
    (T0, T1);
    (T0, T1, T2);
    (T0, T1, T2, T3);
    (T0, T1, T2, T3, T4);
}
