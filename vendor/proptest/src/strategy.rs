//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Arc::new(move |rng| self.sample(rng)),
        }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    sample: Arc<dyn Fn(&mut StdRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut StdRng) -> V {
        (self.sample)(rng)
    }
}

/// Uniform choice among several strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union from type-erased arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Erases one arm (used by the `prop_oneof!` expansion).
    pub fn arm<S>(strategy: S) -> BoxedStrategy<V>
    where
        S: Strategy<Value = V> + 'static,
    {
        strategy.boxed()
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut StdRng) -> V {
        let index = rng.gen_range(0..self.arms.len());
        self.arms[index].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+);)*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (T0 0);
    (T0 0, T1 1);
    (T0 0, T1 1, T2 2);
    (T0 0, T1 1, T2 2, T3 3);
    (T0 0, T1 1, T2 2, T3 3, T4 4);
}

/// String strategy from a regex-like pattern.
///
/// Upstream compiles full regexes; this subset understands the one shape
/// the workspace uses — `.{lo,hi}` (any chars, length in `[lo, hi]`) — and
/// treats any other pattern as `.{0,32}`.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
        let len = rng.gen_range(lo..=hi);
        (0..len).map(|_| random_char(rng)).collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

pub(crate) fn random_char(rng: &mut StdRng) -> char {
    // Mostly ASCII with a sprinkling of multi-byte code points, so string
    // tests exercise UTF-8 boundaries without being dominated by them.
    match rng.gen_range(0u8..10) {
        0 => char::from_u32(rng.gen_range(0x80u32..0xD800)).unwrap_or('\u{FFFD}'),
        1 => char::from_u32(rng.gen_range(0x1_0000u32..0x1_1000)).unwrap_or('\u{FFFD}'),
        _ => char::from(rng.gen_range(0x20u8..0x7F)),
    }
}
