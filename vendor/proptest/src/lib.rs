//! Offline subset of [proptest](https://docs.rs/proptest).
//!
//! The build environment has no network access, so this vendored subset
//! recreates the slice of proptest's API the MAGE test-suites use: the
//! `proptest!` macro, `any::<T>()`, range and tuple strategies,
//! `prop_map`/`prop_oneof!`, and the `collection` constructors. Inputs are
//! drawn from a deterministic seeded RNG, so failures reproduce exactly;
//! unlike upstream there is no shrinking — a failing case panics with the
//! generated values visible in the assertion message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::Strategy;

// The `proptest!` expansion needs the RNG without requiring downstream
// crates to depend on `rand` themselves.
#[doc(hidden)]
pub use rand as __rand;

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    /// Namespace alias so `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Runs each test function against `cases` deterministic random inputs.
///
/// Mirrors upstream's surface syntax, including the optional
/// `#![proptest_config(...)]` header. No shrinking is performed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                // A fixed seed keeps runs reproducible; vary per test name
                // length so sibling tests don't share streams exactly.
                let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    0x4d41_4745_u64 ^ (stringify!($name).len() as u64) << 32,
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    let ( $($pat,)+ ) =
                        ( $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )+ );
                    // The closure lets bodies use `?` with helper functions
                    // returning `Result<_, TestCaseError>`, like upstream.
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__err) = __outcome {
                        panic!("{__err}");
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when an assumption fails.
///
/// Upstream retries with a fresh input; this subset simply returns from the
/// case (the surrounding loop continues with the next one).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::Union::arm($arm) ),+ ])
    };
}
