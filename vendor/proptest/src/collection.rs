//! Collection strategies (`vec`, `btree_map`, `btree_set`).

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A size bound for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy and size bound.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>` with key/value strategies and a size bound.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// Output of [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        // Duplicate keys shrink the map below target; retry a bounded
        // number of times (small domains can't always reach the target).
        let mut attempts = 0;
        while map.len() < target && attempts < 64 + target * 8 {
            map.insert(self.key.sample(rng), self.value.sample(rng));
            attempts += 1;
        }
        map
    }
}

/// Strategy for `BTreeSet<T>` with element strategy and a size bound.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < 64 + target * 8 {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}
