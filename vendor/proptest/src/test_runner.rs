//! Test-runner configuration.

/// Why a single generated case failed.
///
/// Upstream distinguishes failures from rejections and carries source
/// locations; this subset only needs the type to exist so helper functions
/// can return `Result<(), TestCaseError>` and bodies can use `?`.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by an assumption.
    Reject(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "test case failed: {msg}"),
            TestCaseError::Reject(msg) => write!(f, "test case rejected: {msg}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// How many random cases each `proptest!` function runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}
