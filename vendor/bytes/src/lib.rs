//! Offline subset of the [bytes](https://docs.rs/bytes) crate.
//!
//! Provides the one type the MAGE workspace uses: [`Bytes`], an immutable,
//! cheaply cloneable, contiguous byte buffer. Cloning shares the underlying
//! allocation (`Arc`), matching the upstream crate's cost model so the
//! simulator can fan a payload out to many queues without copying.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    /// Borrowed from static storage; no allocation at all.
    Static(&'static [u8]),
    /// A view into a shared heap allocation. `start..end` delimit the
    /// visible window, so subranges ([`Bytes::slice`]) share the same
    /// allocation instead of copying.
    Shared {
        buf: Arc<[u8]>,
        start: usize,
        end: usize,
    },
}

impl Default for Inner {
    fn default() -> Self {
        Inner::Static(&[])
    }
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes {
            inner: Inner::Static(&[]),
        }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            inner: Inner::Static(bytes),
        }
    }

    /// Copies a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: Inner::Shared {
                start: 0,
                end: data.len(),
                buf: Arc::from(data),
            },
        }
    }

    /// Returns a view of `range` within this buffer without copying: the
    /// returned `Bytes` shares the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or decreasing.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let finish = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= finish, "slice range decreasing: {begin}..{finish}");
        assert!(
            finish <= len,
            "slice range {begin}..{finish} out of bounds (len {len})"
        );
        match &self.inner {
            Inner::Static(s) => Bytes {
                inner: Inner::Static(&s[begin..finish]),
            },
            Inner::Shared { buf, start, .. } => Bytes {
                inner: Inner::Shared {
                    buf: Arc::clone(buf),
                    start: start + begin,
                    end: start + finish,
                },
            },
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared { buf, start, end } => &buf[*start..*end],
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            inner: Inner::Shared {
                start: 0,
                end: v.len(),
                buf: Arc::from(v),
            },
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "...({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn static_and_empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"xy").to_vec(), vec![b'x', b'y']);
    }

    #[test]
    fn slice_shares_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let b = a.slice(1..4);
        assert_eq!(b.as_slice(), &[2, 3, 4]);
        assert_eq!(a.as_slice()[1..4].as_ptr(), b.as_slice().as_ptr());
        let c = b.slice(1..);
        assert_eq!(c.as_slice(), &[3, 4]);
    }

    #[test]
    fn slice_of_static_is_static() {
        let a = Bytes::from_static(b"hello");
        let b = a.slice(..2);
        assert_eq!(b.as_slice(), b"he");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let a = Bytes::from(vec![1u8, 2]);
        let _ = a.slice(0..3);
    }
}
