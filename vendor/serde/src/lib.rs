//! An offline, API-compatible subset of [serde](https://serde.rs).
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the slice of serde's data-model API that the MAGE
//! crates actually use: the `Serialize`/`Deserialize` traits, the
//! `Serializer`/`Deserializer` driver traits with their compound helpers,
//! visitor-based deserialization, and derive macros for plain (non-generic)
//! structs and enums. Wire compatibility with real serde data formats is
//! preserved for the constructs exercised here (field order, variant
//! indices, sequence lengths).

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

pub use serde_derive::{Deserialize, Serialize};
