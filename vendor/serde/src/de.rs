//! Deserialization half of the vendored serde subset.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Errors produced by a [`Deserializer`].
pub trait Error: Sized + std::error::Error {
    /// Raised by a `Deserialize` implementation on application-level failure.
    fn custom<T: Display>(msg: T) -> Self;

    /// A compound value held fewer elements than the type required.
    fn invalid_length(len: usize, expected: &str) -> Self {
        Error::custom(format_args!("invalid length {len}, expected {expected}"))
    }

    /// An enum payload carried an out-of-range variant index.
    fn unknown_variant(index: u32, name: &str) -> Self {
        Error::custom(format_args!(
            "unknown variant index {index} for enum {name}"
        ))
    }
}

/// A value that can be deserialized from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// A stateful `Deserialize` driver (serde's seed abstraction).
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Deserializes the value using this seed's state.
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;

    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A data format that can deserialize the serde data model.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Hints that the caller does not know the type (self-describing formats
    /// only).
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i128`.
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        let _ = visitor;
        Err(Error::custom("i128 is not supported"))
    }
    /// Deserializes a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u128`.
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        let _ = visitor;
        Err(Error::custom("u128 is not supported"))
    }
    /// Deserializes an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a string slice.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes borrowed bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a variable-length sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a fixed-length tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct with the given fields.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes an enum with the given variants.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct-field or enum-variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes and discards a value (self-describing formats only).
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Whether this format is textual (JSON-like) rather than binary.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Drives construction of a value from deserializer callbacks.
pub trait Visitor<'de>: Sized {
    /// The produced value.
    type Value;

    /// Describes what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Visits a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "bool")))
    }
    /// Visits an `i8` (defaults to widening).
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(i64::from(v))
    }
    /// Visits an `i16` (defaults to widening).
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(i64::from(v))
    }
    /// Visits an `i32` (defaults to widening).
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(i64::from(v))
    }
    /// Visits an `i64`.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "i64")))
    }
    /// Visits an `i128`.
    fn visit_i128<E: Error>(self, v: i128) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "i128")))
    }
    /// Visits a `u8` (defaults to widening).
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(u64::from(v))
    }
    /// Visits a `u16` (defaults to widening).
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(u64::from(v))
    }
    /// Visits a `u32` (defaults to widening).
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(u64::from(v))
    }
    /// Visits a `u64`.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "u64")))
    }
    /// Visits a `u128`.
    fn visit_u128<E: Error>(self, v: u128) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "u128")))
    }
    /// Visits an `f32` (defaults to widening).
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(f64::from(v))
    }
    /// Visits an `f64`.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "f64")))
    }
    /// Visits a `char` (defaults to a one-char string).
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        self.visit_str(v.encode_utf8(&mut [0u8; 4]))
    }
    /// Visits a transient string slice.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "str")))
    }
    /// Visits a string borrowed from the input.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    /// Visits an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Visits transient bytes.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "bytes")))
    }
    /// Visits bytes borrowed from the input.
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    /// Visits an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    /// Visits `Option::None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom(Unexpected(&self, "none")))
    }
    /// Visits `Option::Some`.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom(Unexpected(&self, "some")))
    }
    /// Visits `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom(Unexpected(&self, "unit")))
    }
    /// Visits a newtype struct's inner value.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom(Unexpected(&self, "newtype struct")))
    }
    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(Error::custom(Unexpected(&self, "sequence")))
    }
    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(Error::custom(Unexpected(&self, "map")))
    }
    /// Visits an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(Error::custom(Unexpected(&self, "enum")))
    }
}

/// Formats "unexpected X, expected <visitor expectation>" lazily.
struct Unexpected<'a, V>(&'a V, &'static str);

impl<'de, V: Visitor<'de>> Display for Unexpected<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        struct Expecting<'a, V>(&'a V);
        impl<'de, V: Visitor<'de>> Display for Expecting<'_, V> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.expecting(f)
            }
        }
        write!(f, "unexpected {}, expected {}", self.1, Expecting(self.0))
    }
}

/// Access to the elements of a sequence being deserialized.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Deserializes the next element with a seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserializes the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Number of remaining elements, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map being deserialized.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Deserializes the next key with a seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Deserializes the next value with a seed.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Deserializes the next value.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Deserializes the next entry.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// Number of remaining entries, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum being deserialized.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Continuation for the variant payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserializes the variant identifier with a seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Deserializes the variant identifier.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of an enum variant being deserialized.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Consumes a unit variant.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Deserializes a newtype variant's payload with a seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// Deserializes a newtype variant's payload.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// Deserializes a tuple variant's payload.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes a struct variant's payload.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

pub mod value {
    //! Deserializers over plain Rust values (variant indices and the like).

    use super::*;

    /// A deserializer that yields a single `u32` (enum variant indices).
    pub struct U32Deserializer<E> {
        value: u32,
        marker: PhantomData<E>,
    }

    impl<E> U32Deserializer<E> {
        /// Wraps a `u32`.
        pub fn new(value: u32) -> Self {
            U32Deserializer {
                value,
                marker: PhantomData,
            }
        }
    }

    macro_rules! forward_to_visit_u32 {
        ($($method:ident,)*) => {
            $(
                fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                    visitor.visit_u32(self.value)
                }
            )*
        };
    }

    impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;

        forward_to_visit_u32! {
            deserialize_any,
            deserialize_bool,
            deserialize_i8,
            deserialize_i16,
            deserialize_i32,
            deserialize_i64,
            deserialize_i128,
            deserialize_u8,
            deserialize_u16,
            deserialize_u32,
            deserialize_u64,
            deserialize_u128,
            deserialize_f32,
            deserialize_f64,
            deserialize_char,
            deserialize_str,
            deserialize_string,
            deserialize_bytes,
            deserialize_byte_buf,
            deserialize_option,
            deserialize_unit,
            deserialize_seq,
            deserialize_map,
            deserialize_identifier,
            deserialize_ignored_any,
        }

        fn deserialize_unit_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple<V: Visitor<'de>>(
            self,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    }
}

/// Conversion of a plain value into a deserializer over it.
pub trait IntoDeserializer<'de, E: Error> {
    /// The deserializer type produced.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Wraps `self` in its deserializer.
    fn into_deserializer(self) -> Self::Deserializer;
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = value::U32Deserializer<E>;

    fn into_deserializer(self) -> Self::Deserializer {
        value::U32Deserializer::new(self)
    }
}

// ---- impls for std types ----

macro_rules! primitive_deserialize {
    ($($ty:ty, $deserialize:ident, $visit:ident, $expecting:literal;)*) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct PrimitiveVisitor;
                    impl<'de> Visitor<'de> for PrimitiveVisitor {
                        type Value = $ty;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str($expecting)
                        }
                        fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                            Ok(v)
                        }
                    }
                    deserializer.$deserialize(PrimitiveVisitor)
                }
            }
        )*
    };
}

primitive_deserialize! {
    bool, deserialize_bool, visit_bool, "a bool";
    i8, deserialize_i8, visit_i8, "an i8";
    i16, deserialize_i16, visit_i16, "an i16";
    i32, deserialize_i32, visit_i32, "an i32";
    i64, deserialize_i64, visit_i64, "an i64";
    i128, deserialize_i128, visit_i128, "an i128";
    u8, deserialize_u8, visit_u8, "a u8";
    u16, deserialize_u16, visit_u16, "a u16";
    u32, deserialize_u32, visit_u32, "a u32";
    u64, deserialize_u64, visit_u64, "a u64";
    u128, deserialize_u128, visit_u128, "a u128";
    f32, deserialize_f32, visit_f32, "an f32";
    f64, deserialize_f64, visit_f64, "an f64";
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UsizeVisitor;
        impl<'de> Visitor<'de> for UsizeVisitor {
            type Value = usize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a usize")
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| E::custom("usize out of range"))
            }
        }
        deserializer.deserialize_u64(UsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IsizeVisitor;
        impl<'de> Visitor<'de> for IsizeVisitor {
            type Value = isize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an isize")
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::custom("isize out of range"))
            }
        }
        deserializer.deserialize_i64(IsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct CharVisitor;
        impl<'de> Visitor<'de> for CharVisitor {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a char")
            }
            fn visit_char<E: Error>(self, v: char) -> Result<char, E> {
                Ok(v)
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom("expected a single char")),
                }
            }
        }
        deserializer.deserialize_char(CharVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for &'de str {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StrVisitor;
        impl<'de> Visitor<'de> for StrVisitor {
            type Value = &'de str;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a borrowed string")
            }
            fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<&'de str, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_str(StrVisitor)
    }
}

impl<'de> Deserialize<'de> for &'de [u8] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BytesVisitor;
        impl<'de> Visitor<'de> for BytesVisitor {
            type Value = &'de [u8];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a borrowed byte slice")
            }
            fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<&'de [u8], E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bytes(BytesVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut values = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(value) = seq.next_element()? {
                    values.push(value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(std::collections::VecDeque::from)
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for MapVisitor<K, V>
        where
            K: Deserialize<'de> + Ord,
            V: Deserialize<'de>,
        {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut values = std::collections::BTreeMap::new();
                while let Some((key, value)) = map.next_entry()? {
                    values.insert(key, value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, T> Deserialize<'de> for std::collections::BTreeSet<T>
where
    T: Deserialize<'de> + Ord,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(|v| v.into_iter().collect())
    }
}

impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Deserialize<'de> for Result<T, E> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ResultVisitor<T, E>(PhantomData<(T, E)>);
        impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Visitor<'de> for ResultVisitor<T, E> {
            type Value = Result<T, E>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a Result")
            }
            fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
                let (index, variant): (u32, _) = data.variant()?;
                match index {
                    0 => variant.newtype_variant().map(Ok),
                    1 => variant.newtype_variant().map(Err),
                    other => Err(Error::unknown_variant(other, "Result")),
                }
            }
        }
        deserializer.deserialize_enum("Result", &["Ok", "Err"], ResultVisitor(PhantomData))
    }
}

macro_rules! tuple_deserialize {
    ($len:expr => $($name:ident)+) => {
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    #[allow(non_snake_case)]
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        $(
                            let $name = seq
                                .next_element()?
                                .ok_or_else(|| Error::invalid_length($len, "a tuple"))?;
                        )+
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    };
}

tuple_deserialize!(1 => T0);
tuple_deserialize!(2 => T0 T1);
tuple_deserialize!(3 => T0 T1 T2);
tuple_deserialize!(4 => T0 T1 T2 T3);
tuple_deserialize!(5 => T0 T1 T2 T3 T4);
tuple_deserialize!(6 => T0 T1 T2 T3 T4 T5);
tuple_deserialize!(7 => T0 T1 T2 T3 T4 T5 T6);
tuple_deserialize!(8 => T0 T1 T2 T3 T4 T5 T6 T7);

macro_rules! array_deserialize {
    ($($len:expr => $($name:ident)+;)*) => {
        $(
            impl<'de, T: Deserialize<'de>> Deserialize<'de> for [T; $len] {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct ArrayVisitor<T>(PhantomData<T>);
                    impl<'de, T: Deserialize<'de>> Visitor<'de> for ArrayVisitor<T> {
                        type Value = [T; $len];
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            write!(f, "an array of length {}", $len)
                        }
                        #[allow(non_snake_case)]
                        fn visit_seq<A: SeqAccess<'de>>(
                            self,
                            mut seq: A,
                        ) -> Result<Self::Value, A::Error> {
                            $(
                                let $name = seq
                                    .next_element()?
                                    .ok_or_else(|| Error::invalid_length($len, "an array"))?;
                            )+
                            Ok([$($name),+])
                        }
                    }
                    deserializer.deserialize_tuple($len, ArrayVisitor(PhantomData))
                }
            }
        )*
    };
}

array_deserialize! {
    1 => A0;
    2 => A0 A1;
    3 => A0 A1 A2;
    4 => A0 A1 A2 A3;
}
