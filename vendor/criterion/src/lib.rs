//! Offline subset of [criterion](https://docs.rs/criterion).
//!
//! Implements the harness surface the MAGE benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! calibrate-then-measure wall-clock loop instead of upstream's full
//! statistical machinery. Results print as `name: median-ish ns/iter`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the
/// measurement loop is identical for all sizes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    let per_iter = if bencher.iterations == 0 {
        0.0
    } else {
        bencher.total.as_nanos() as f64 / bencher.iterations as f64
    };
    println!(
        "bench {id}: {per_iter:.1} ns/iter ({} iters)",
        bencher.iterations
    );
}

/// Measures closures handed to it by the benchmark body.
pub struct Bencher {
    total: Duration,
    iterations: u64,
}

/// Target measurement time per benchmark.
const MEASURE_FOR: Duration = Duration::from_millis(200);

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that takes a perceptible time.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let n = (MEASURE_FOR.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.total += start.elapsed();
        self.iterations += n;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(20));
        let n = (MEASURE_FOR.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            std::hint::black_box(routine(input));
        }
        self.total += start.elapsed();
        self.iterations += n;
    }
}

/// Prevents the optimizer from eliding a value (re-export of
/// `std::hint::black_box` under criterion's name).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
