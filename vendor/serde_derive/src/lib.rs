//! Derive macros for the vendored serde subset.
//!
//! Implemented directly on `proc_macro` (the build environment has no
//! network access, so `syn`/`quote` are unavailable). Supports plain,
//! non-generic structs and enums — named fields, tuple fields, unit shapes,
//! and all four enum variant kinds — which covers every derived type in the
//! MAGE workspace. Container/field `#[serde(...)]` attributes and generic
//! parameters are intentionally rejected rather than silently mishandled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Body {
    UnitStruct,
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    body: VariantBody,
}

#[derive(Debug)]
enum VariantBody {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Item {
    name: String,
    body: Body,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_serialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => error(&msg),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens parse")
}

fn is_punct(tok: &TokenTree, ch: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tok: &TokenTree, name: &str) -> bool {
    matches!(tok, TokenTree::Ident(i) if i.to_string() == name)
}

/// Advances past leading `#[...]` attributes (including doc comments).
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while *i + 1 < toks.len() && is_punct(&toks[*i], '#') {
        *i += 2;
    }
}

/// Advances past `pub`, `pub(crate)`, `pub(super)`, etc.
fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if *i < toks.len() && is_ident(&toks[*i], "pub") {
        *i += 1;
        if *i < toks.len() {
            if let TokenTree::Group(g) = &toks[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);

    let kind = match toks.get(i) {
        Some(tok) if is_ident(tok, "struct") => "struct",
        Some(tok) if is_ident(tok, "enum") => "enum",
        _ => return Err("serde derive supports only structs and enums".into()),
    };
    i += 1;

    let name = match toks.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        _ => return Err("expected a type name".into()),
    };
    i += 1;

    if toks.get(i).is_some_and(|tok| is_punct(tok, '<')) {
        return Err("the vendored serde derive does not support generic types".into());
    }

    let body = if kind == "struct" {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(tok) if is_punct(tok, ';') => Body::UnitStruct,
            _ => return Err("unsupported struct body".into()),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            _ => return Err("expected enum body".into()),
        }
    };

    Ok(Item { name, body })
}

/// Skips a type (or any token run) up to a top-level comma, which is also
/// consumed. Tracks angle-bracket depth so commas inside generics don't
/// terminate early.
fn skip_past_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            tok if is_punct(tok, '<') => depth += 1,
            tok if is_punct(tok, '>') => depth -= 1,
            tok if is_punct(tok, ',') && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            _ => return Err("expected a field name".into()),
        };
        i += 1;
        if !toks.get(i).is_some_and(|tok| is_punct(tok, ':')) {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        skip_past_comma(&toks, &mut i);
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_past_comma(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            _ => return Err("expected a variant name".into()),
        };
        i += 1;
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantBody::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantBody::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantBody::Unit,
        };
        if toks.get(i).is_some_and(|tok| is_punct(tok, '=')) {
            return Err("explicit enum discriminants are not supported".into());
        }
        if toks.get(i).is_some_and(|tok| is_punct(tok, ',')) {
            i += 1;
        }
        variants.push(Variant { name, body });
    }
    Ok(variants)
}

// ---- code generation ----

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => format!("__serializer.serialize_unit_struct({name:?})"),
        Body::NamedStruct(fields) => {
            let mut out = String::new();
            out.push_str("use ::serde::ser::SerializeStruct as _;\n");
            out.push_str(&format!(
                "let mut __state = __serializer.serialize_struct({name:?}, {})?;\n",
                fields.len()
            ));
            for field in fields {
                out.push_str(&format!(
                    "__state.serialize_field({field:?}, &self.{field})?;\n"
                ));
            }
            out.push_str("__state.end()");
            out
        }
        Body::TupleStruct(1) => {
            format!("__serializer.serialize_newtype_struct({name:?}, &self.0)")
        }
        Body::TupleStruct(len) => {
            let mut out = String::new();
            out.push_str("use ::serde::ser::SerializeTupleStruct as _;\n");
            out.push_str(&format!(
                "let mut __state = __serializer.serialize_tuple_struct({name:?}, {len})?;\n"
            ));
            for idx in 0..*len {
                out.push_str(&format!("__state.serialize_field(&self.{idx})?;\n"));
            }
            out.push_str("__state.end()");
            out
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (index, variant) in variants.iter().enumerate() {
                let vname = &variant.name;
                match &variant.body {
                    VariantBody::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         __serializer.serialize_unit_variant({name:?}, {index}u32, {vname:?}),\n"
                    )),
                    VariantBody::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => __serializer\
                         .serialize_newtype_variant({name:?}, {index}u32, {vname:?}, __f0),\n"
                    )),
                    VariantBody::Tuple(len) => {
                        let binders: Vec<String> = (0..*len).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\n\
                             use ::serde::ser::SerializeTupleVariant as _;\n\
                             let mut __state = __serializer.serialize_tuple_variant(\
                             {name:?}, {index}u32, {vname:?}, {len})?;\n",
                            binders.join(", ")
                        );
                        for binder in &binders {
                            arm.push_str(&format!("__state.serialize_field({binder})?;\n"));
                        }
                        arm.push_str("__state.end()\n},\n");
                        arms.push_str(&arm);
                    }
                    VariantBody::Named(fields) => {
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             use ::serde::ser::SerializeStructVariant as _;\n\
                             let mut __state = __serializer.serialize_struct_variant(\
                             {name:?}, {index}u32, {vname:?}, {})?;\n",
                            fields.join(", "),
                            fields.len()
                        );
                        for field in fields {
                            arm.push_str(&format!(
                                "__state.serialize_field({field:?}, {field})?;\n"
                            ));
                        }
                        arm.push_str("__state.end()\n},\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(\n\
         &self,\n\
         __serializer: __S,\n\
         ) -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

/// A `visit_seq` body that reads `fields` in order and builds `ctor`.
fn visit_seq_body(ctor_open: &str, ctor_close: &str, fields: &[String], what: &str) -> String {
    let mut out = String::new();
    for (idx, field) in fields.iter().enumerate() {
        out.push_str(&format!(
            "let __v{idx} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
             ::std::option::Option::Some(__value) => __value,\n\
             ::std::option::Option::None => return ::std::result::Result::Err(\n\
             ::serde::de::Error::invalid_length({idx}, {what:?})),\n\
             }};\n"
        ));
        let _ = field;
    }
    out.push_str("::std::result::Result::Ok(");
    out.push_str(ctor_open);
    let inits: Vec<String> = fields
        .iter()
        .enumerate()
        .map(|(idx, field)| {
            if field.is_empty() {
                format!("__v{idx}")
            } else {
                format!("{field}: __v{idx}")
            }
        })
        .collect();
    out.push_str(&inits.join(", "));
    out.push_str(ctor_close);
    out.push_str(")\n");
    out
}

fn seq_visitor(
    visitor_name: &str,
    value_ty: &str,
    expecting: &str,
    ctor_open: &str,
    ctor_close: &str,
    fields: &[String],
) -> String {
    format!(
        "struct {visitor_name};\n\
         impl<'de> ::serde::de::Visitor<'de> for {visitor_name} {{\n\
         type Value = {value_ty};\n\
         fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
         __f.write_str({expecting:?})\n\
         }}\n\
         fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(\n\
         self,\n\
         mut __seq: __A,\n\
         ) -> ::std::result::Result<Self::Value, __A::Error> {{\n\
         {}\n\
         }}\n\
         }}",
        visit_seq_body(ctor_open, ctor_close, fields, expecting)
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => format!(
            "struct __Visitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
             __f.write_str(\"unit struct {name}\")\n\
             }}\n\
             fn visit_unit<__E: ::serde::de::Error>(\n\
             self,\n\
             ) -> ::std::result::Result<{name}, __E> {{\n\
             ::std::result::Result::Ok({name})\n\
             }}\n\
             }}\n\
             __deserializer.deserialize_unit_struct({name:?}, __Visitor)"
        ),
        Body::NamedStruct(fields) => {
            let field_names: Vec<String> = fields.iter().map(|f| format!("{f:?}")).collect();
            format!(
                "{}\n\
                 __deserializer.deserialize_struct({name:?}, &[{}], __Visitor)",
                seq_visitor(
                    "__Visitor",
                    name,
                    &format!("struct {name}"),
                    &format!("{name} {{ "),
                    " }",
                    fields,
                ),
                field_names.join(", ")
            )
        }
        Body::TupleStruct(1) => format!(
            "struct __Visitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
             __f.write_str(\"newtype struct {name}\")\n\
             }}\n\
             fn visit_newtype_struct<__D: ::serde::Deserializer<'de>>(\n\
             self,\n\
             __deserializer: __D,\n\
             ) -> ::std::result::Result<{name}, __D::Error> {{\n\
             ::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__deserializer)?))\n\
             }}\n\
             }}\n\
             __deserializer.deserialize_newtype_struct({name:?}, __Visitor)"
        ),
        Body::TupleStruct(len) => {
            let fields = vec![String::new(); *len];
            format!(
                "{}\n\
                 __deserializer.deserialize_tuple_struct({name:?}, {len}, __Visitor)",
                seq_visitor(
                    "__Visitor",
                    name,
                    &format!("tuple struct {name}"),
                    &format!("{name}("),
                    ")",
                    &fields,
                )
            )
        }
        Body::Enum(variants) => {
            let variant_names: Vec<String> =
                variants.iter().map(|v| format!("{:?}", v.name)).collect();
            let mut arms = String::new();
            for (index, variant) in variants.iter().enumerate() {
                let vname = &variant.name;
                match &variant.body {
                    VariantBody::Unit => arms.push_str(&format!(
                        "{index}u32 => {{\n\
                         ::serde::de::VariantAccess::unit_variant(__variant)?;\n\
                         ::std::result::Result::Ok({name}::{vname})\n\
                         }},\n"
                    )),
                    VariantBody::Tuple(1) => arms.push_str(&format!(
                        "{index}u32 => ::std::result::Result::Ok({name}::{vname}(\n\
                         ::serde::de::VariantAccess::newtype_variant(__variant)?,\n\
                         )),\n"
                    )),
                    VariantBody::Tuple(len) => {
                        let fields = vec![String::new(); *len];
                        arms.push_str(&format!(
                            "{index}u32 => {{\n\
                             {}\n\
                             ::serde::de::VariantAccess::tuple_variant(\
                             __variant, {len}, __Variant{index})\n\
                             }},\n",
                            seq_visitor(
                                &format!("__Variant{index}"),
                                name,
                                &format!("tuple variant {name}::{vname}"),
                                &format!("{name}::{vname}("),
                                ")",
                                &fields,
                            )
                        ));
                    }
                    VariantBody::Named(fields) => {
                        let field_names: Vec<String> =
                            fields.iter().map(|f| format!("{f:?}")).collect();
                        arms.push_str(&format!(
                            "{index}u32 => {{\n\
                             {}\n\
                             ::serde::de::VariantAccess::struct_variant(\
                             __variant, &[{}], __Variant{index})\n\
                             }},\n",
                            seq_visitor(
                                &format!("__Variant{index}"),
                                name,
                                &format!("struct variant {name}::{vname}"),
                                &format!("{name}::{vname} {{ "),
                                " }",
                                fields,
                            ),
                            field_names.join(", ")
                        ));
                    }
                }
            }
            format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                 __f.write_str(\"enum {name}\")\n\
                 }}\n\
                 fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(\n\
                 self,\n\
                 __data: __A,\n\
                 ) -> ::std::result::Result<{name}, __A::Error> {{\n\
                 let (__index, __variant): (u32, _) = ::serde::de::EnumAccess::variant(__data)?;\n\
                 match __index {{\n\
                 {arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::de::Error::unknown_variant(__other, {name:?})),\n\
                 }}\n\
                 }}\n\
                 }}\n\
                 __deserializer.deserialize_enum({name:?}, &[{}], __Visitor)",
                variant_names.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(\n\
         __deserializer: __D,\n\
         ) -> ::std::result::Result<Self, __D::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
