//! Offline subset of the [rand](https://docs.rs/rand) crate (0.8 API).
//!
//! The MAGE simulator only needs deterministic, seedable randomness —
//! `StdRng::seed_from_u64`, `gen`, and `gen_range` — so this vendored
//! subset implements exactly that on top of xoshiro256++ seeded via
//! splitmix64 (the same construction rand's `SmallRng` family uses).
//! Streams are stable across runs and platforms, which the determinism
//! test-suite relies on; they are NOT the same streams upstream `StdRng`
//! produces, and nothing here is cryptographically secure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing random value generation (the rand 0.8 `Rng` surface the
/// workspace uses).
pub trait Rng: RngCore {
    /// Samples a uniform value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable uniformly from an RNG ("standard distribution").
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (rand's convention).
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, bound)` without modulo bias (Lemire's method
/// with a rejection loop).
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let raw = rng.next_u64();
        let (hi, lo) = {
            let wide = u128::from(raw) * u128::from(bound);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! unsigned_sample_range {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let span = u64::from(self.end - self.start);
                    self.start + uniform_below(rng, span) as $ty
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample from empty range");
                    let span = u64::from(end - start);
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    start + uniform_below(rng, span + 1) as $ty
                }
            }
        )*
    };
}

unsigned_sample_range!(u8, u16, u32);

impl SampleRange<u64> for Range<u64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + uniform_below(rng, self.end - self.start)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> u64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        let span = end - start;
        if span == u64::MAX {
            return rng.next_u64();
        }
        start + uniform_below(rng, span + 1)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + uniform_below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + uniform_below(rng, (end - start) as u64 + 1) as usize
    }
}

macro_rules! signed_sample_range {
    ($($ty:ty => $unsigned:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let span = (self.end as $unsigned).wrapping_sub(self.start as $unsigned);
                    self.start.wrapping_add(uniform_below(rng, u64::from(span)) as $ty)
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample from empty range");
                    let span = (end as $unsigned).wrapping_sub(start as $unsigned);
                    start.wrapping_add(uniform_below(rng, u64::from(span) + 1) as $ty)
                }
            }
        )*
    };
}

signed_sample_range!(i8 => u8, i16 => u16, i32 => u32);

impl SampleRange<i64> for Range<i64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = (self.end as u64).wrapping_sub(self.start as u64);
        self.start.wrapping_add(uniform_below(rng, span) as i64)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let s = rng.gen_range(-4i32..4);
            assert!((-4..4).contains(&s));
        }
    }
}
