//! # MAGE — Mobility Attributes Guide Execution
//!
//! A Rust reproduction of *“MAGE: A Distributed Programming Model”*
//! (Barr, Pandey, Haungs — ICDCS 2001): **mobility attributes**, first-class
//! objects that bind to program components and decide whether and where
//! those components move before they execute.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`codec`] — compact binary marshalling (the Java-serialization stand-in)
//! * [`sim`] — the deterministic discrete-event network testbed
//! * [`rmi`] — the RMI-like remote invocation substrate
//! * the MAGE runtime itself (re-exported at the root): [`Runtime`],
//!   [`attribute`], [`coercion`], [`lock`], …
//! * [`workloads`] — the paper's application scenarios
//!
//! # Quickstart
//!
//! ```
//! use mage::attribute::Rev;
//! use mage::workload_support::test_object_class;
//! use mage::{Runtime, Visibility};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two namespaces joined by the paper's 10 Mb/s Ethernet.
//! let mut rt = Runtime::builder()
//!     .nodes(["lab", "sensor1"])
//!     .class(test_object_class())
//!     .build();
//! rt.deploy_class("TestObject", "lab")?;
//! rt.create_object("TestObject", "counter", "lab", &(), Visibility::Public)?;
//!
//! // Bind a REV mobility attribute: move the counter to sensor1, run there.
//! let rev = Rev::new("TestObject", "counter", "sensor1");
//! let (stub, n): (_, Option<i64>) = rt.bind_invoke("lab", &rev, "inc", &())?;
//! assert_eq!(n, Some(1));
//! assert_eq!(rt.node_name(stub.location()), Some("sensor1"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mage_codec as codec;
pub use mage_rmi as rmi;
pub use mage_sim as sim;
pub use mage_workloads as workloads;

pub use mage_core::{
    admission, attribute, class, coercion, component, error, lock, object, proto, registry,
    security, workload_support, BindReceipt, ClassDef, ClassLibrary, Component, DesignTriple,
    LockKind, MageError, MageNode, MobileEnv, MobileObject, ModelKind, NodeConfig, Placement,
    Runtime, RuntimeBuilder, Visibility,
};
