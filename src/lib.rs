//! # MAGE — Mobility Attributes Guide Execution
//!
//! A Rust reproduction of *“MAGE: A Distributed Programming Model”*
//! (Barr, Pandey, Haungs — ICDCS 2001): **mobility attributes**, first-class
//! objects that bind to program components and decide whether and where
//! those components move before they execute.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`codec`] — compact binary marshalling (the Java-serialization stand-in)
//! * [`sim`] — the deterministic discrete-event network testbed
//! * [`rmi`] — the RMI-like remote invocation substrate
//! * the MAGE runtime itself (re-exported at the root): [`Runtime`],
//!   [`Session`], [`Pending`], [`attribute`], [`coercion`], [`lock`], …
//! * [`workloads`] — the paper's application scenarios
//!
//! # Quickstart
//!
//! ```
//! use mage::attribute::Rev;
//! use mage::workload_support::{methods, test_object_class};
//! use mage::{ObjectSpec, Runtime};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two namespaces joined by the paper's 10 Mb/s Ethernet.
//! let mut rt = Runtime::builder()
//!     .nodes(["lab", "sensor1"])
//!     .class(test_object_class())
//!     .build();
//! rt.deploy_class("TestObject", "lab")?;
//!
//! // A session is the client handle to one namespace.
//! let lab = rt.session("lab")?;
//! lab.create(ObjectSpec::new("counter").class("TestObject"))?;
//!
//! // Bind a REV mobility attribute: move the counter to sensor1, run there.
//! // `methods::INC` is a typed descriptor — args and result check at
//! // compile time.
//! let rev = Rev::new("TestObject", "counter", "sensor1");
//! let (stub, n) = lab.bind_invoke(&rev, methods::INC, &())?;
//! assert_eq!(n, Some(1));
//! assert_eq!(rt.node_name(stub.location()), Some("sensor1"));
//! # Ok(())
//! # }
//! ```
//!
//! # Pipelined operation
//!
//! Every operation has an `_async` form returning a typed
//! [`Pending`]: issue a batch across several sessions, pump the world
//! with [`Runtime::step`] or [`Runtime::run_until_idle`], then collect.
//!
//! ```
//! use mage::attribute::Rpc;
//! use mage::workload_support::{methods, test_object_class};
//! use mage::{ObjectSpec, Runtime};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rt = Runtime::builder()
//!     .nodes(["host", "c1", "c2"])
//!     .class(test_object_class())
//!     .build();
//! rt.deploy_class("TestObject", "host")?;
//! rt.session("host")?.create(ObjectSpec::new("svc").class("TestObject"))?;
//!
//! let (c1, c2) = (rt.session("c1")?, rt.session("c2")?);
//! let attr = Rpc::new("TestObject", "svc", "host");
//! let (s1, s2) = (c1.bind(&attr)?, c2.bind(&attr)?);
//! // Two clients' invocations overlap in flight.
//! let p1 = c1.call_async(&s1, methods::INC, &())?;
//! let p2 = c2.call_async(&s2, methods::INC, &())?;
//! rt.run_until_idle()?;
//! assert_eq!(p1.wait()? + p2.wait()?, 3); // 1 + 2, in some order
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mage_codec as codec;
pub use mage_rmi as rmi;
pub use mage_sim as sim;
pub use mage_workloads as workloads;

pub use mage_core::{
    admission, attribute, class, coercion, component, error, lock, object, proto, registry,
    security, spec, workload_support, BindReceipt, ClassDef, ClassLibrary, Component, DesignTriple,
    Durability, LockKind, MageError, MageNode, Method, MobileEnv, MobileObject, ModelKind,
    NodeConfig, ObjectHandle, ObjectSpec, Pending, Placement, Runtime, RuntimeBuilder, Session,
    Stub, Visibility,
};
